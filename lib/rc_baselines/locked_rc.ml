module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word
module Prof = Simcore.Profiler

let name = "GNU C++"

let n_locks = 16

type t = {
  mem : M.t;
  locks : int array;  (* spinlock word addresses, one per line *)
  reg : Rc_obj.registry;
  mutable handles : h array;
}

and h = { t : t; pid : int }

type cls = Rc_obj.cls

(* No cheap protection: snapshots are owned loads. *)
type snap = int

let create mem ~procs =
  let locks = Array.init n_locks (fun _ -> M.alloc mem ~tag:"lock" ~size:1) in
  let t = { mem; locks; reg = Rc_obj.create_registry (); handles = [||] } in
  t.handles <- Array.init (procs + 1) (fun i -> { t; pid = i });
  t

let handle t pid = if pid = -1 then t.handles.(Array.length t.handles - 1) else t.handles.(pid)

let register_class t ~tag ~fields ~ref_fields =
  Rc_obj.register t.reg ~tag ~fields ~ref_fields

let field_addr = Rc_obj.field_addr ~header:1

let lock_of t loc = t.locks.(loc mod n_locks)

let lock h loc =
  let l = lock_of h.t loc in
  let rec spin () =
    if not (M.cas h.t.mem l ~expected:0 ~desired:1) then begin
      (* Lock contention: the backoff and every further acquisition
         attempt is retry stall. *)
      Prof.with_phase Prof.Cas_retry @@ fun () ->
      Proc.pay 4;
      spin ()
    end
  in
  spin ()

let unlock h loc = M.write h.t.mem (lock_of h.t loc) 0

let rec dec h w =
  let old = M.faa h.t.mem (Rc_obj.count_addr w) (-1) in
  assert (old >= 1);
  if old = 1 then delete h w

and delete h w =
  Rc_obj.delete h.t.mem h.t.reg w ~header:1 ~destruct_cell:(fun fw ->
      if not (Word.is_null fw) then dec h (Word.clean fw))

let make h cls fields = Rc_obj.alloc h.t.mem cls ~header:1 ~count0:1 ~fields

let load h loc =
  lock h loc;
  let w = M.read h.t.mem loc in
  (* The lock guarantees the location still owns its reference, so the
     count is at least 1 and the increment cannot race a free. *)
  if not (Word.is_null w) then ignore (M.faa h.t.mem (Rc_obj.count_addr w) 1);
  unlock h loc;
  w

let store h loc desired =
  lock h loc;
  let old = M.fas h.t.mem loc desired in
  unlock h loc;
  if not (Word.is_null old) then dec h (Word.clean old)

let cas h loc ~expected ~desired =
  lock h loc;
  let cur = M.read h.t.mem loc in
  let ok = cur = expected in
  if ok then begin
    if not (Word.is_null desired) then
      ignore (M.faa h.t.mem (Rc_obj.count_addr desired) 1);
    M.write h.t.mem loc desired
  end;
  unlock h loc;
  if ok && not (Word.is_null expected) then dec h (Word.clean expected);
  ok

let cas_move h loc ~expected ~desired =
  lock h loc;
  let cur = M.read h.t.mem loc in
  let ok = cur = expected in
  if ok then M.write h.t.mem loc desired;
  unlock h loc;
  if ok && not (Word.is_null expected) then dec h (Word.clean expected);
  ok

let peek_ref h loc = M.read h.t.mem loc

let destruct h w = if not (Word.is_null w) then dec h (Word.clean w)

let set_ref_field h obj i rc =
  let old = M.fas h.t.mem (field_addr obj i) rc in
  if not (Word.is_null old) then dec h (Word.clean old)

let get_snapshot h loc = load h loc

let snap_word s = s

let snap_is_null s = Word.is_null s

let release_snapshot h s = destruct h s

let deferred _ = 0

let flush _ = ()

(* {1 Compiled forms} *)

module A = Simcore.Vm.Asm

(* Spin for the lock of the location in [r_loc]: the CAS loop of [lock],
   including the 4-tick backoff between attempts. Returns the register
   holding the lock's address (for [unlock]). *)
let emit_lock t a r_loc =
  let t_locks = A.table a t.locks in
  let r_li = A.reg a and r_lock = A.reg a in
  let r_zero = A.reg a and r_one = A.reg a and r_ok = A.reg a in
  A.andi a r_li r_loc (n_locks - 1);
  A.tab a r_lock t_locks r_li;
  A.movi a r_zero 0;
  A.movi a r_one 1;
  let spin = A.label a and locked = A.label a in
  A.place a spin;
  A.cas a r_ok r_lock ~expected:r_zero ~desired:r_one;
  A.bnei a r_ok 0 locked;
  A.payi a 4;
  A.jmp a spin;
  A.place a locked;
  (r_lock, r_zero)

(* The [dec] of the non-null word in [r_w]: fetch-and-add, with the
   (rare) delete cascade staying a host call. *)
let emit_dec h a r_w =
  let r_a = A.reg a and r_old = A.reg a in
  let skip = A.label a in
  A.shri a r_a r_w 2;
  A.faai a r_old r_a (-1);
  A.bnei a r_old 1 skip;
  A.host a (fun fr -> delete h (Word.clean fr.Simcore.Vm.regs.(r_w)));
  A.place a skip

let vm_ops t =
  Some
    {
      Rc_intf.vm_header = 1;
      vm_load =
        (fun a ~pid:_ ~src ->
          let r_lock, r_zero = emit_lock t a src in
          let r_w = A.reg a and r_a = A.reg a and r_t = A.reg a in
          let unlocked = A.label a in
          A.read a r_w src;
          A.shri a r_a r_w 2;
          A.beqi a r_a 0 unlocked;
          A.faai a r_t r_a 1;
          A.place a unlocked;
          A.write a r_lock r_zero;
          r_w);
      vm_store_fresh =
        (fun a ~pid ~dst ~value ->
          let h = handle t pid in
          let r_lock, r_zero = emit_lock t a dst in
          let r_old = A.reg a and r_oa = A.reg a in
          let no_dec = A.label a in
          A.fas a r_old dst value;
          A.write a r_lock r_zero;
          A.shri a r_oa r_old 2;
          A.beqi a r_oa 0 no_dec;
          emit_dec h a r_old;
          A.place a no_dec);
      vm_destruct =
        (fun a ~pid ~ptr ->
          let h = handle t pid in
          let r_a = A.reg a in
          let skip = A.label a in
          A.shri a r_a ptr 2;
          A.beqi a r_a 0 skip;
          emit_dec h a ptr;
          A.place a skip);
    }

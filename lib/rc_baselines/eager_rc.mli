(** The textbook-but-wrong concurrent reference count: [load] reads the
    pointer and then increments its count with no protection whatsoever.
    Exists for failure injection: under the chaos scheduler the window
    between the read and the increment is routinely hit by a concurrent
    final decrement, the object is freed, and the increment faults —
    precisely the read-reclaim race of the paper's §1/§3. Tests assert
    that the simulator reports the use-after-free. *)

include Rc_intf.S

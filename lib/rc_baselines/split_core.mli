(** Shared logic for split-reference-count schemes — the technique behind
    Folly's and just::thread's [atomic_shared_ptr]. See the
    implementation's header comment for the full accounting argument
    (bias claims, borrow hand-back, settlement). *)

(** {1 Cell packing: [ptr:35][ext:28]} *)

val ext_bits : int

val bias : int
(** The cell's internal-count claim; dwarfs any reachable external
    count. *)

val ptr_of : int -> int

val ext_of : int -> int

val init_word : int -> int
(** Cell word for a freshly installed pointer (external count 0). *)

(** {1 The cell-update flavour} *)

module type CELL = sig
  val scheme_name : string

  val read_raw : Simcore.Memory.t -> int -> int

  val cas_raw : Simcore.Memory.t -> int -> expected:int -> desired:int -> bool

  val faa_borrow : Simcore.Memory.t -> int -> int
  (** Bump the external count; return the prior raw word. *)

  val swap_install : Simcore.Memory.t -> int -> ptr:int -> int
  (** Install (ptr, 0); return the prior raw word. *)

  val try_install : Simcore.Memory.t -> int -> old_raw:int -> ptr:int -> bool

  (** {2 Compiled forms}

      The same cell updates emitted into a {!Simcore.Vm} stream —
      identical tick sequence (DW-CAS surcharges, retry loops included).
      Operands and results are register indices. *)

  val emit_read_raw : Simcore.Vm.Asm.t -> loc:int -> int

  val emit_cas_raw :
    Simcore.Vm.Asm.t -> loc:int -> expected:int -> desired:int -> int
  (** Returns a register holding 1 on success, 0 on failure. *)

  val emit_faa_borrow : Simcore.Vm.Asm.t -> loc:int -> int

  val emit_swap_install : Simcore.Vm.Asm.t -> loc:int -> ptr:int -> int
end

module Make (Cell : CELL) : Rc_intf.S

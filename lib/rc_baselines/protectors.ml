module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word
module Prof = Simcore.Profiler

let header = 2

let field_addr = Rc_obj.field_addr ~header

let flag_addr w = Word.to_addr w + 1

type t = {
  mem : M.t;
  procs : int;
  n_slots : int;
  guards : int array;  (* per-process base of [n_slots] words *)
  reg : Rc_obj.registry;
}

let create mem ~procs ~slots ~reg =
  let guards =
    Array.init procs (fun _ ->
        let base = M.alloc mem ~tag:"guards" ~size:slots in
        (* Single-writer announcement words: only the owning process
           stores, scanners read. The race checker treats them as atomic
           locations (store-release / load-acquire). *)
        for s = 0 to slots - 1 do
          M.mark_race_sync mem (base + s)
        done;
        base)
  in
  { mem; procs; n_slots = slots; guards; reg }

let slots t = t.n_slots

let guard_addr t ~pid ~slot =
  assert (pid >= 0 && pid < t.procs);
  assert (slot >= 0 && slot < t.n_slots);
  t.guards.(pid) + slot

let read_guard t ~pid ~slot = M.read t.mem (guard_addr t ~pid ~slot)

let write_guard t ~pid ~slot v = M.write t.mem (guard_addr t ~pid ~slot) v

let protect_loop t ~pid ~slot src =
  let a = guard_addr t ~pid ~slot in
  let rec loop v =
    M.write t.mem a v;
    let v' = M.read t.mem src in
    if v' = v then v else loop v'
  in
  loop (M.read t.mem src)

let on_zero t ~pending w =
  if M.cas t.mem (flag_addr w) ~expected:0 ~desired:1 then begin
    pending := w :: !pending;
    true
  end
  else false

let guarded_addrs t =
  let set = Hashtbl.create 32 in
  for p = 0 to t.procs - 1 do
    for s = 0 to t.n_slots - 1 do
      let w = M.read t.mem (t.guards.(p) + s) in
      if not (Word.is_null w) then Hashtbl.replace set (Word.to_addr w) ()
    done
  done;
  set

let scan_pending t ~pending ~dec =
  (* The guard sweep, the pending-list pass and the deletions it
     liberates are reclamation time for every protector-based scheme
     (herlihy, orcgc): charge them to the smr-scan phase. *)
  Prof.with_phase Prof.Smr_scan @@ fun () ->
  let guarded = guarded_addrs t in
  (* Deletions can cascade into [dec], which may append new entries to
     [pending]; snapshot-and-drain keeps those appends and keeps a
     nested scan disjoint from this one. *)
  let snapshot = !pending in
  pending := [];
  let keep = ref [] in
  let freed = ref 0 in
  List.iter
    (fun w ->
      Proc.pay 1;
      let c = M.read t.mem (Rc_obj.count_addr w) in
      if c > 0 || Hashtbl.mem guarded (Word.to_addr w) then
        (* Resurrected or still guarded: this entry keeps watching; the
           liberation flag stays claimed so no second entry can appear. *)
        keep := w :: !keep
      else begin
        incr freed;
        Rc_obj.delete t.mem t.reg w ~header ~destruct_cell:(fun fw ->
            if not (Word.is_null fw) then dec (Word.clean fw))
      end)
    snapshot;
  pending := List.rev_append !keep !pending;
  !freed

let clear_all_guards t =
  for p = 0 to t.procs - 1 do
    for s = 0 to t.n_slots - 1 do
      M.write t.mem (t.guards.(p) + s) 0
    done
  done

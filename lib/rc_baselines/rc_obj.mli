(** Shared managed-object layout for the reference-counting schemes:
    [header] words of scheme bookkeeping (word 0 always the count), then
    user fields. Provides the class registry and recursive deletion
    skeleton so each scheme only supplies its own count manipulation. *)

type cls = { tag : string; n_fields : int; ref_fields : int list }

type registry

val create_registry : unit -> registry

val register :
  registry -> tag:string -> fields:int -> ref_fields:int list -> cls

val find_cls : registry -> Simcore.Memory.t -> base:int -> cls
(** Class of the live or freed block at [base].
    @raise Invalid_argument when the tag is unregistered. *)

val field_addr : header:int -> int -> int -> int
(** [field_addr ~header obj i] for a (possibly marked) pointer word
    [obj]. *)

val count_addr : int -> int

val alloc :
  Simcore.Memory.t -> cls -> header:int -> count0:int -> fields:int array -> int
(** Allocate and initialize; header words beyond the count are zero.
    Returns the pointer word. *)

val delete :
  Simcore.Memory.t ->
  registry ->
  header:int ->
  destruct_cell:(int -> unit) ->
  int ->
  unit
(** [delete mem reg ~header ~destruct_cell w] passes the raw content of
    every reference-field cell to [destruct_cell] (schemes decode their
    own cell encoding and skip nulls), then frees the block. *)

(** Common signature for atomic reference-counted-pointer schemes — the
    contenders of the paper's §7.1 (Figure 6): lock-based (GNU libstdc++),
    split reference count packed in one word (Folly), split count with
    double-word CAS (just::thread), Herlihy et al.'s lock-free counting
    (plain and optimized), OrcGC, and our deferred scheme (with and
    without snapshots). {!Eager_rc} is the deliberately racy textbook
    scheme used for failure injection.

    Managed objects share one layout (see {!Rc_obj}): word 0 holds the
    scheme's count(s), then user fields. Plain data fields are read
    directly via {!Simcore.Memory}; fields holding counted references are
    operated on through the scheme, since cell encodings differ (packed
    external counts, etc.). *)

(** Compiled forms of the hot operations, emitted into a {!Simcore.Vm}
    instruction stream by the workload drivers (see
    [Workload.Fig6.loadstore_point]). Register arguments and results are
    {!Simcore.Vm.Asm} register indices; [pid] is fixed at emit time (the
    stream is per-process), letting per-process constants — guard
    addresses, announcement slots — become immediates.

    Contract: with the heap sanitizer off, the emitted sequence must be
    tick-, RNG- and heap-identical to the closure operation it compiles:
    [vm_load] to [load], [vm_destruct] to [destruct], and
    [vm_store_fresh] to [store] of a freshly allocated (count-1,
    non-null) reference. Rare paths (reclamation, scans) stay host
    closures, so only the per-operation fast path is flattened. The
    closure operations remain the differential oracle ([test_vm]). *)
type vm_ops = {
  vm_header : int;
      (** header words before user fields, so [field_addr] can be
          emitted as pointer arithmetic *)
  vm_load : Simcore.Vm.Asm.t -> pid:int -> src:int -> int;
      (** emit [load] from the address in register [src]; returns the
          register left holding the owned reference word *)
  vm_store_fresh : Simcore.Vm.Asm.t -> pid:int -> dst:int -> value:int -> unit;
      (** emit [store] of the fresh owned reference in register [value]
          into the address in register [dst] *)
  vm_destruct : Simcore.Vm.Asm.t -> pid:int -> ptr:int -> unit;
      (** emit [destruct] of the reference word in register [ptr] *)
}

module type S = sig
  type t

  type h
  (** Per-process handle. *)

  type cls

  type snap
  (** A protected or owned short-lived reference. Schemes without cheap
      protection implement it as an owned reference ("perform a load
      instead", §7.1). *)

  val name : string

  val create : Simcore.Memory.t -> procs:int -> t

  val handle : t -> int -> h
  (** [pid = -1] is the sequential setup handle. *)

  val register_class :
    t -> tag:string -> fields:int -> ref_fields:int list -> cls

  val make : h -> cls -> int array -> int
  (** Allocate with count 1; ref-field words transfer ownership. Returns
      an owned reference (a pointer word). *)

  val field_addr : int -> int -> int
  (** [field_addr obj i]: address of user field [i]; uniform across
      schemes. *)

  val load : h -> int -> int
  (** Owned atomic load from a counted location. *)

  val store : h -> int -> int -> unit
  (** Move-store into a counted location; retires/decrements the
      overwritten reference. *)

  val cas : h -> int -> expected:int -> desired:int -> bool
  (** Copy-semantics CAS on decoded pointer values. [desired] may be a
      borrowed pointer that the caller has protected (via a snapshot on
      its container or ownership). *)

  val cas_move : h -> int -> expected:int -> desired:int -> bool
  (** Move-semantics CAS: success consumes the caller's reference to
      [desired]. *)

  val peek_ref : h -> int -> int
  (** Decode the plain pointer word currently stored in a counted
      location, without protection — only safe while the enclosing object
      is protected. *)

  val set_ref_field : h -> int -> int -> int -> unit
  (** [set_ref_field h obj i rc]: move-assign a reference field of an
      object that is not yet published (e.g. fixing up [next] in a failed
      push loop); the overwritten reference is discarded. *)

  val destruct : h -> int -> unit
  (** Discard an owned reference. *)

  val get_snapshot : h -> int -> snap

  val snap_word : snap -> int

  val snap_is_null : snap -> bool

  val release_snapshot : h -> snap -> unit

  val deferred : t -> int
  (** Reclamations currently deferred (0 for eager schemes). *)

  val flush : t -> unit
  (** Quiescent cleanup: apply every deferred reclamation. *)

  val vm_ops : t -> vm_ops option
  (** Compiled forms of [load]/[store]/[destruct] for the {!Simcore.Vm}
      fast path, or [None] when the scheme has no compiled form (the
      drivers then run the closure operations from a host call). *)
end

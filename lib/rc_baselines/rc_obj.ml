module M = Simcore.Memory
module Word = Simcore.Word

type cls = { tag : string; n_fields : int; ref_fields : int list }

type registry = (string, cls) Hashtbl.t

let create_registry () = Hashtbl.create 16

let register reg ~tag ~fields ~ref_fields =
  assert (not (Hashtbl.mem reg tag));
  List.iter (fun i -> assert (i >= 0 && i < fields)) ref_fields;
  let c = { tag; n_fields = fields; ref_fields } in
  Hashtbl.add reg tag c;
  c

let find_cls reg mem ~base =
  match M.block_tag mem base with
  | Some tag -> (
      match Hashtbl.find_opt reg tag with
      | Some c -> c
      | None -> invalid_arg ("Rc_obj: unregistered class " ^ tag))
  | None -> invalid_arg "Rc_obj: not a block"

let field_addr ~header w i = Word.to_addr w + header + i

let count_addr w = Word.to_addr w

let alloc mem cls ~header ~count0 ~fields =
  assert (Array.length fields = cls.n_fields);
  assert (header >= 1);
  let base = M.alloc mem ~tag:cls.tag ~size:(header + cls.n_fields) in
  M.write mem base count0;
  Array.iteri (fun i v -> M.write mem (base + header + i) v) fields;
  Word.of_addr base

let delete mem reg ~header ~destruct_cell w =
  let base = Word.to_addr w in
  let cls = find_cls reg mem ~base in
  List.iter
    (fun i -> destruct_cell (M.read mem (base + header + i)))
    cls.ref_fields;
  M.free mem base

(** Shared machinery for the "protect the object once its count hits
    zero" school (Herlihy et al.'s pass-the-buck counting, OrcGC) — the
    design the paper contrasts with protecting the {e count} (§3).

    Guards are hazard-pointer-style single-writer announcement words.
    Objects of these schemes carry a two-word header: the count, and a
    liberation flag. The decrement that takes the count to zero tries to
    CAS the flag from 0 to 1; the winner alone adds the object to its
    pending list, so every object has at most one liberation entry and
    reclamation passes never race each other onto freed memory. A pass
    frees pending objects that are unguarded and still at count zero;
    resurrected objects (a guarded reader re-incremented the count)
    simply stay pending until they die for good. *)

val header : int
(** Header words: count + liberation flag. *)

val field_addr : int -> int -> int

type t

val create :
  Simcore.Memory.t -> procs:int -> slots:int -> reg:Rc_obj.registry -> t

val slots : t -> int

val guard_addr : t -> pid:int -> slot:int -> int

val read_guard : t -> pid:int -> slot:int -> int

val write_guard : t -> pid:int -> slot:int -> int -> unit

val protect_loop : t -> pid:int -> slot:int -> int -> int
(** Hazard-pointer acquire: read the pointer at the source address,
    announce, re-read until stable; returns the word read. *)

val on_zero : t -> pending:int list ref -> int -> bool
(** Called by the decrement that observed the count reach zero: claim the
    liberation flag and, if won, append to [pending] and return [true]. *)

val scan_pending : t -> pending:int list ref -> dec:(int -> unit) -> int
(** One reclamation pass over [pending]; returns the number of objects
    freed. [dec] is the scheme's decrement, applied to reference fields
    of deleted objects. *)

val clear_all_guards : t -> unit
(** Test-time quiescence helper. *)

(** Lock-free reference counting in the style of Herlihy, Luchangco,
    Martin and Moir (TOCS 2005), built on their pass-the-buck idea:
    counts are updated eagerly, and when a count reaches zero the
    {e object} is protected from reclamation by per-process guards until
    no reader can hold it — the design the paper contrasts with
    protecting the {e count} (§3). *)

module type OPT = sig
  val optimized : bool
end

module Make (_ : OPT) : Rc_intf.S

module Plain : Rc_intf.S
(** The original: sticky-counter CAS loops ("Herlihy" in Figure 6). *)

module Optimized : Rc_intf.S
(** The paper's improved version with fetch-and-add / fetch-and-store
    where applicable ("Herlihy (optimized)"). *)

(** The Folly model: split reference count with the pointer and a wide
    external count packed into a {e single} word, so borrows are plain
    fetch-and-adds (Folly packs 48-bit pointer + 16-bit count; we pack
    into the simulated 64-bit word with a 32-bit count). Lock-free, the
    strongest classic contender of Figure 6. *)

include Rc_intf.S

(** Shared logic for split-reference-count schemes -- the technique
    behind Folly's and just::thread's [atomic_shared_ptr] (Williams,
    "C++ Concurrency in Action" par. 7.2.4; the paper's "Atomic
    Reference Counting" related work).

    A counted location packs [pointer | external count] into its word.
    Installing a pointer credits the object's word-0 internal count with
    a large {e bias} (the cell's claim); every reader borrowing through
    the location bumps the external count and is pre-paid out of that
    bias -- borrows are never returned in place (that would be the
    classic split-count ABA). Whoever swaps the cell out settles the
    books with one fetch-and-add of [external - bias]: the claim dies,
    one credit per borrow taken through this occupancy remains, and each
    borrowed reference pays its own [-1] when destructed.

    Invariant: while any cell holds the pointer or any reference is
    live, the internal count is at least 1 (the bias dwarfs any possible
    external count), so the count reaches zero exactly once, when the
    last settlement or destruction lands -- that operation frees. This
    makes the scheme immune to the swap/settle window that a naive
    "merge ext-2" scheme leaves open under preemption.

    The cell-update flavour is the functor parameter: fetch-and-add
    borrows and fetch-and-store installs (Folly) versus double-word-CAS
    loops (just::thread) -- that one choice is the entire difference
    between those two lines of Figure 6. *)

module M = Simcore.Memory
module Word = Simcore.Word
module Prof = Simcore.Profiler

(* Packing: [ptr:35][ext:28]; the bias exceeds any reachable external
   count (2^28 borrows during a single occupancy of one cell). *)
let ext_bits = 28

let bias = 1 lsl (ext_bits + 1)

let ptr_of w = w lsr ext_bits

let ext_of w = w land ((1 lsl ext_bits) - 1)

let init_word ptr = ptr lsl ext_bits

module type CELL = sig
  val scheme_name : string

  val read_raw : M.t -> int -> int

  val cas_raw : M.t -> int -> expected:int -> desired:int -> bool

  val faa_borrow : M.t -> int -> int
  (** Bump the external count; return the prior raw word. *)

  val swap_install : M.t -> int -> ptr:int -> int
  (** Install (ptr, 0); return the prior raw word. *)

  val try_install : M.t -> int -> old_raw:int -> ptr:int -> bool

  (** {2 Compiled forms}

      Emit the same cell update into a {!Simcore.Vm} stream (same tick
      sequence, including DW-CAS surcharges and retry loops). Address
      and word operands are register indices; value-returning emitters
      return the register left holding the result. *)

  val emit_read_raw : Simcore.Vm.Asm.t -> loc:int -> int

  val emit_cas_raw :
    Simcore.Vm.Asm.t -> loc:int -> expected:int -> desired:int -> int
  (** Returns a register holding 1 on success, 0 on failure. *)

  val emit_faa_borrow : Simcore.Vm.Asm.t -> loc:int -> int

  val emit_swap_install : Simcore.Vm.Asm.t -> loc:int -> ptr:int -> int
end

module Make (Cell : CELL) : Rc_intf.S = struct
  let name = Cell.scheme_name

  type t = { mem : M.t; reg : Rc_obj.registry; mutable handles : h array }

  and h = { t : t; pid : int }

  type cls = Rc_obj.cls

  type snap = int

  let create mem ~procs =
    let t = { mem; reg = Rc_obj.create_registry (); handles = [||] } in
    t.handles <- Array.init (procs + 1) (fun i -> { t; pid = i });
    t

  let handle t pid =
    if pid = -1 then t.handles.(Array.length t.handles - 1) else t.handles.(pid)

  let register_class t ~tag ~fields ~ref_fields =
    Rc_obj.register t.reg ~tag ~fields ~ref_fields

  let field_addr = Rc_obj.field_addr ~header:1

  (* Apply a delta to the internal count; landing exactly on zero frees.
     Deletion settles each reference-field cell like a final swap-out. *)
  let rec apply h p delta =
    let old = M.faa h.t.mem (Rc_obj.count_addr p) delta in
    if old + delta = 0 then delete h p

  and delete h p =
    Rc_obj.delete h.t.mem h.t.reg p ~header:1 ~destruct_cell:(fun cell ->
        let q = ptr_of cell in
        if not (Word.is_null q) then settle h cell)

  and settle h raw = apply h (Word.clean (ptr_of raw)) (ext_of raw - bias)

  let dec h p = apply h (Word.clean p) (-1)

  (* Convert an owned (+1) reference into a cell claim. *)
  let credit_install h p = apply h (Word.clean p) (bias - 1)

  let make h cls fields =
    let encoded = Array.copy fields in
    List.iter
      (fun i ->
        let p = fields.(i) in
        encoded.(i) <- init_word p;
        if not (Word.is_null p) then
          (* Fresh object: its count cannot reach zero here. *)
          ignore (M.faa h.t.mem (Rc_obj.count_addr (Word.clean p)) (bias - 1)))
      cls.Rc_obj.ref_fields;
    Rc_obj.alloc h.t.mem cls ~header:1 ~count0:1 ~fields:encoded

  (* Borrow, convert to a local reference (internal +1), then hand the
     borrow back in place when the cell still holds the pointer -- the
     structure (and hot-line cost) of the real implementations. A failed
     hand-back leaves the borrow to be credited by the eventual
     settlement, cancelling the conversion. Reinstall ABA on the
     hand-back is benign here: the stolen external unit and the stale
     settlement credit cancel globally, and any pending settlement's
     bias keeps the count positive throughout (see module comment). *)
  let load h loc =
    let w = Cell.faa_borrow h.t.mem loc in
    let p = ptr_of w in
    if Word.is_null p then p
    else begin
      ignore (M.faa h.t.mem (Rc_obj.count_addr (Word.clean p)) 1);
      let rec hand_back tries =
        let w' = Cell.read_raw h.t.mem loc in
        if ptr_of w' <> p || ext_of w' = 0 then
          (* Cell moved on: cancel the conversion; the settlement's
             credit now backs this reference. Cannot land on zero: this
             reference's own backing is still outstanding. *)
          apply h (Word.clean p) (-1)
        else if not (Cell.cas_raw h.t.mem loc ~expected:w' ~desired:(w' - 1))
        then
          if tries > 0 then hand_back (tries - 1)
          else apply h (Word.clean p) (-1)
      in
      hand_back 2;
      p
    end

  let store h loc desired =
    if not (Word.is_null desired) then credit_install h desired;
    let old = Cell.swap_install h.t.mem loc ~ptr:desired in
    if not (Word.is_null (ptr_of old)) then settle h old

  let cas h loc ~expected ~desired =
    let rec loop () =
      let w = Cell.read_raw h.t.mem loc in
      if ptr_of w <> expected then false
      else begin
        (* Copy semantics: the caller keeps its reference, so the full
           bias is credited for the cell's claim. The caller's live
           reference keeps the count positive if we must undo. *)
        if not (Word.is_null desired) then
          ignore (M.faa h.t.mem (Rc_obj.count_addr (Word.clean desired)) bias);
        if Cell.try_install h.t.mem loc ~old_raw:w ~ptr:desired then begin
          if not (Word.is_null (ptr_of w)) then settle h w;
          true
        end
        else begin
          Prof.with_phase Prof.Cas_retry @@ fun () ->
          if not (Word.is_null desired) then
            apply h (Word.clean desired) (-bias);
          loop ()
        end
      end
    in
    loop ()

  let cas_move h loc ~expected ~desired =
    let rec loop () =
      let w = Cell.read_raw h.t.mem loc in
      if ptr_of w <> expected then false
      else begin
        if not (Word.is_null desired) then credit_install h desired;
        if Cell.try_install h.t.mem loc ~old_raw:w ~ptr:desired then begin
          if not (Word.is_null (ptr_of w)) then settle h w;
          true
        end
        else begin
          (* Undo the claim but keep the caller's +1. *)
          Prof.with_phase Prof.Cas_retry @@ fun () ->
          if not (Word.is_null desired) then
            apply h (Word.clean desired) (1 - bias);
          loop ()
        end
      end
    in
    loop ()

  let set_ref_field h obj i rc =
    if not (Word.is_null rc) then credit_install h rc;
    let old = Cell.swap_install h.t.mem (field_addr obj i) ~ptr:rc in
    if not (Word.is_null (ptr_of old)) then settle h old

  let peek_ref h loc = ptr_of (Cell.read_raw h.t.mem loc)

  let destruct h w = if not (Word.is_null w) then dec h w

  let get_snapshot h loc = load h loc

  let snap_word s = s

  let snap_is_null s = Word.is_null s

  let release_snapshot h s = destruct h s

  let deferred _ = 0

  let flush _ = ()

  (* {1 Compiled forms} *)

  module A = Simcore.Vm.Asm

  let ext_mask = (1 lsl ext_bits) - 1

  (* [apply] of an immediate delta to the count of the clean pointer
     whose address is already in [r_pa]; the zero landing (impossible on
     some call sites, see [load]'s comment) stays a host call that runs
     the delete cascade. [r_p] holds the pointer word for the host. *)
  let emit_apply_imm h a ~r_pa ~r_p delta =
    let r_old = A.reg a in
    let skip = A.label a in
    A.faai a r_old r_pa delta;
    A.bnei a r_old (-delta) skip;
    A.host a (fun fr -> delete h (Word.clean fr.Simcore.Vm.regs.(r_p)));
    A.place a skip

  let vm_ops t =
    Some
      {
        Rc_intf.vm_header = 1;
        vm_load =
          (fun a ~pid ~src ->
            let h = handle t pid in
            let r_w = Cell.emit_faa_borrow a ~loc:src in
            let r_p = A.reg a and r_pa = A.reg a in
            let out = A.label a in
            A.shri a r_p r_w ext_bits;
            A.shri a r_pa r_p 2;
            A.beqi a r_pa 0 out;
            let r_t = A.reg a in
            A.faai a r_t r_pa 1;
            (* hand_back, three CAS attempts as in the closure form *)
            let r_tries = A.reg a in
            A.movi a r_tries 2;
            let retry = A.label a and cancel = A.label a in
            A.place a retry;
            let r_w' = Cell.emit_read_raw a ~loc:src in
            let r_p' = A.reg a and r_e = A.reg a and r_wm = A.reg a in
            A.shri a r_p' r_w' ext_bits;
            A.bne a r_p' r_p cancel;
            A.andi a r_e r_w' ext_mask;
            A.beqi a r_e 0 cancel;
            A.addi a r_wm r_w' (-1);
            let r_ok = Cell.emit_cas_raw a ~loc:src ~expected:r_w' ~desired:r_wm in
            A.bnei a r_ok 0 out;
            A.addi a r_tries r_tries (-1);
            A.bgei a r_tries 0 retry;
            A.place a cancel;
            emit_apply_imm h a ~r_pa ~r_p (-1);
            A.place a out;
            r_p);
        vm_store_fresh =
          (fun a ~pid ~dst ~value ->
            let h = handle t pid in
            (* credit_install: the fresh reference is never null. *)
            let r_va = A.reg a in
            A.shri a r_va value 2;
            emit_apply_imm h a ~r_pa:r_va ~r_p:value (bias - 1);
            let r_old = Cell.emit_swap_install a ~loc:dst ~ptr:value in
            (* settle the displaced occupancy, if any *)
            let r_p = A.reg a and r_pa = A.reg a in
            let out = A.label a in
            A.shri a r_p r_old ext_bits;
            A.shri a r_pa r_p 2;
            A.beqi a r_pa 0 out;
            let r_e = A.reg a and r_d = A.reg a in
            let r_oc = A.reg a and r_s = A.reg a in
            A.andi a r_e r_old ext_mask;
            A.addi a r_d r_e (-bias);
            A.faa a r_oc r_pa r_d;
            A.add a r_s r_oc r_d;
            A.bnei a r_s 0 out;
            A.host a (fun fr ->
                delete h (Word.clean (ptr_of fr.Simcore.Vm.regs.(r_old))));
            A.place a out);
        vm_destruct =
          (fun a ~pid ~ptr ->
            let h = handle t pid in
            let r_pa = A.reg a in
            let skip = A.label a in
            A.shri a r_pa ptr 2;
            A.beqi a r_pa 0 skip;
            emit_apply_imm h a ~r_pa ~r_p:ptr (-1);
            A.place a skip);
      }
end

module M = Simcore.Memory
module Proc = Simcore.Proc

(* just::thread model: the (pointer, count) pair lives in two machine
   words updated by double-word CAS, so every cell update -- including
   the borrow fast path -- is a CAS loop paying the DW-CAS surcharge.
   Modelled on one simulated word with the surcharge applied explicitly
   (DESIGN.md par. 1). *)
module Cell = struct
  let scheme_name = "just::thread"

  let dw_extra = Simcore.Config.default_cost.c_dwcas_extra

  let read_raw = M.read

  let dwcas mem loc ~expected ~desired =
    Proc.pay dw_extra;
    M.cas mem loc ~expected ~desired

  let cas_raw = dwcas

  let faa_borrow mem loc =
    let rec loop () =
      let w = M.read mem loc in
      if dwcas mem loc ~expected:w ~desired:(w + 1) then w else loop ()
    in
    loop ()

  let swap_install mem loc ~ptr =
    let rec loop () =
      let w = M.read mem loc in
      if dwcas mem loc ~expected:w ~desired:(Split_core.init_word ptr) then w
      else loop ()
    in
    loop ()

  let try_install mem loc ~old_raw ~ptr =
    dwcas mem loc ~expected:old_raw ~desired:(Split_core.init_word ptr)
end

include Split_core.Make (Cell)

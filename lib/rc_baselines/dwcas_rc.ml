module M = Simcore.Memory
module Proc = Simcore.Proc
module Prof = Simcore.Profiler

(* just::thread model: the (pointer, count) pair lives in two machine
   words updated by double-word CAS, so every cell update -- including
   the borrow fast path -- is a CAS loop paying the DW-CAS surcharge.
   Modelled on one simulated word with the surcharge applied explicitly
   (DESIGN.md par. 1). *)
module Cell = struct
  let scheme_name = "just::thread"

  let dw_extra = Simcore.Config.default_cost.c_dwcas_extra

  let read_raw = M.read

  let dwcas mem loc ~expected ~desired =
    Proc.pay dw_extra;
    M.cas mem loc ~expected ~desired

  let cas_raw = dwcas

  let faa_borrow mem loc =
    let rec loop () =
      let w = M.read mem loc in
      if dwcas mem loc ~expected:w ~desired:(w + 1) then w
      else Prof.with_phase Prof.Cas_retry loop
    in
    loop ()

  let swap_install mem loc ~ptr =
    let rec loop () =
      let w = M.read mem loc in
      if dwcas mem loc ~expected:w ~desired:(Split_core.init_word ptr) then w
      else Prof.with_phase Prof.Cas_retry loop
    in
    loop ()

  let try_install mem loc ~old_raw ~ptr =
    dwcas mem loc ~expected:old_raw ~desired:(Split_core.init_word ptr)

  module A = Simcore.Vm.Asm

  let emit_read_raw a ~loc =
    let r = A.reg a in
    A.read a r loc;
    r

  let emit_dwcas a ~loc ~expected ~desired =
    let r = A.reg a in
    A.payi a dw_extra;
    A.cas a r loc ~expected ~desired;
    r

  let emit_cas_raw = emit_dwcas

  let emit_faa_borrow a ~loc =
    let r_w = A.reg a and r_w1 = A.reg a in
    let retry = A.label a and out = A.label a in
    A.place a retry;
    A.read a r_w loc;
    A.addi a r_w1 r_w 1;
    let r_ok = emit_dwcas a ~loc ~expected:r_w ~desired:r_w1 in
    A.bnei a r_ok 0 out;
    A.jmp a retry;
    A.place a out;
    r_w

  let emit_swap_install a ~loc ~ptr =
    let r_iw = A.reg a and r_w = A.reg a in
    A.shli a r_iw ptr Split_core.ext_bits;
    let retry = A.label a and out = A.label a in
    A.place a retry;
    A.read a r_w loc;
    let r_ok = emit_dwcas a ~loc ~expected:r_w ~desired:r_iw in
    A.bnei a r_ok 0 out;
    A.jmp a retry;
    A.place a out;
    r_w
end

include Split_core.Make (Cell)

(** Lock-free reference counting in the style of Herlihy, Luchangco,
    Martin and Moir (TOCS 2005), built on their pass-the-buck idea: counts
    are updated eagerly, and when a count reaches zero the {e object} is
    protected from reclamation by per-process guards until no reader can
    hold it (contrast with the paper's scheme, which protects the
    {e count} — §3).

    [Make (struct let optimized = false end)] updates counts with CAS
    loops, as the original does ("a CAS loop instead of a fetch-and-add
    due to the use of a sticky counter", §2); [optimized = true] is the
    paper's improved version using fetch-and-add / fetch-and-store where
    applicable (§7.1). *)

module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word
module Prof = Simcore.Profiler

module type OPT = sig
  val optimized : bool
end

module Make (Opt : OPT) : Rc_intf.S = struct
  let name = if Opt.optimized then "Herlihy (optimized)" else "Herlihy"

  type t = {
    mem : M.t;
    procs : int;
    reg : Rc_obj.registry;
    mutable prot : Protectors.t option;
    mutable handles : h array;
  }

  and h = {
    t : t;
    pid : int;
    pending : int list ref;
    mutable pend_len : int;
    mutable in_scan : bool;
    scan_batch : int;
  }

  type cls = Rc_obj.cls

  type snap = int

  let prot t = match t.prot with Some p -> p | None -> assert false

  let create mem ~procs =
    let reg = Rc_obj.create_registry () in
    let t = { mem; procs; reg; prot = None; handles = [||] } in
    t.prot <- Some (Protectors.create mem ~procs ~slots:1 ~reg);
    let scan_batch = max 8 procs in
    t.handles <-
      Array.init (procs + 1) (fun i ->
          {
            t;
            pid = (if i = procs then -1 else i);
            pending = ref [];
            pend_len = 0;
            in_scan = false;
            scan_batch;
          });
    t

  let handle t pid =
    if pid = -1 then t.handles.(t.procs) else t.handles.(pid)

  let register_class t ~tag ~fields ~ref_fields =
    Rc_obj.register t.reg ~tag ~fields ~ref_fields

  let field_addr = Protectors.field_addr

  let inc h w =
    let a = Rc_obj.count_addr w in
    if Opt.optimized then ignore (M.faa h.t.mem a 1)
    else begin
      (* The original's sticky-counter CAS loop. *)
      let rec loop () =
        let c = M.read h.t.mem a in
        if not (M.cas h.t.mem a ~expected:c ~desired:(c + 1)) then
          Prof.with_phase Prof.Cas_retry loop
      in
      loop ()
    end

  let rec dec h w =
    let a = Rc_obj.count_addr w in
    let old =
      if Opt.optimized then M.faa h.t.mem a (-1)
      else begin
        let rec loop () =
          let c = M.read h.t.mem a in
          if M.cas h.t.mem a ~expected:c ~desired:(c - 1) then c
          else Prof.with_phase Prof.Cas_retry loop
        in
        loop ()
      end
    in
    assert (old >= 1);
    if old = 1 then zero_tail h w

  and zero_tail h w =
    if Protectors.on_zero (prot h.t) ~pending:h.pending w then
      h.pend_len <- h.pend_len + 1;
    if h.pend_len >= h.scan_batch && not h.in_scan then ignore (scan h)

  and scan h =
    h.in_scan <- true;
    let freed = Protectors.scan_pending (prot h.t) ~pending:h.pending ~dec:(dec h) in
    h.pend_len <- List.length !(h.pending);
    h.in_scan <- false;
    freed

  let make h cls fields =
    Rc_obj.alloc h.t.mem cls ~header:Protectors.header ~count0:1 ~fields

  let load h loc =
    if h.pid < 0 then begin
      (* Sequential setup path. *)
      let w = M.read h.t.mem loc in
      if not (Word.is_null w) then inc h w;
      w
    end
    else begin
      let w = Protectors.protect_loop (prot h.t) ~pid:h.pid ~slot:0 loc in
      if not (Word.is_null w) then begin
        inc h w;
        Protectors.write_guard (prot h.t) ~pid:h.pid ~slot:0 Word.null
      end;
      w
    end

  let swap h loc desired =
    if Opt.optimized then M.fas h.t.mem loc desired
    else begin
      let rec loop () =
        let cur = M.read h.t.mem loc in
        if M.cas h.t.mem loc ~expected:cur ~desired then cur
        else Prof.with_phase Prof.Cas_retry loop
      in
      loop ()
    end

  let store h loc desired =
    let old = swap h loc desired in
    if not (Word.is_null old) then dec h (Word.clean old)

  let cas h loc ~expected ~desired =
    (* [desired] is owned or protected by the caller, so its count is at
       least one and the increment cannot race a free. *)
    if not (Word.is_null desired) then inc h desired;
    if M.cas h.t.mem loc ~expected ~desired then begin
      if not (Word.is_null expected) then dec h (Word.clean expected);
      true
    end
    else begin
      if not (Word.is_null desired) then dec h (Word.clean desired);
      false
    end

  let cas_move h loc ~expected ~desired =
    if M.cas h.t.mem loc ~expected ~desired then begin
      if not (Word.is_null expected) then dec h (Word.clean expected);
      true
    end
    else false

  let peek_ref h loc = M.read h.t.mem loc

  let destruct h w = if not (Word.is_null w) then dec h (Word.clean w)

  let set_ref_field h obj i rc =
    let old = M.fas h.t.mem (field_addr obj i) rc in
    if not (Word.is_null old) then dec h (Word.clean old)

  let get_snapshot h loc = load h loc

  let snap_word s = s

  let snap_is_null s = Word.is_null s

  let release_snapshot h s = destruct h s

  let deferred t =
    Array.fold_left (fun acc h -> acc + List.length !(h.pending)) 0 t.handles

  let flush t =
    Protectors.clear_all_guards (prot t);
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iter (fun h -> if scan h > 0 then progress := true) t.handles
    done

  (* {1 Compiled forms} *)

  module A = Simcore.Vm.Asm

  (* [inc] of the count at the address in [r_a]: fetch-and-add when
     optimized, else the original's sticky-counter CAS loop. *)
  let emit_inc a r_a =
    if Opt.optimized then begin
      let r_t = A.reg a in
      A.faai a r_t r_a 1
    end
    else begin
      let r_c = A.reg a and r_c1 = A.reg a in
      let retry = A.label a and out = A.label a in
      A.place a retry;
      A.read a r_c r_a;
      A.addi a r_c1 r_c 1;
      let r_ok = A.reg a in
      A.cas a r_ok r_a ~expected:r_c ~desired:r_c1;
      A.bnei a r_ok 0 out;
      A.jmp a retry;
      A.place a out
    end

  (* [dec] of the non-null word in [r_w]; the zero transition (flag
     claim, possible batch scan) stays a host call. *)
  let emit_dec h a r_w =
    let r_a = A.reg a in
    A.shri a r_a r_w 2;
    let r_old =
      if Opt.optimized then begin
        let r_old = A.reg a in
        A.faai a r_old r_a (-1);
        r_old
      end
      else begin
        let r_c = A.reg a and r_c1 = A.reg a in
        let retry = A.label a and out = A.label a in
        A.place a retry;
        A.read a r_c r_a;
        A.addi a r_c1 r_c (-1);
        let r_ok = A.reg a in
        A.cas a r_ok r_a ~expected:r_c ~desired:r_c1;
        A.bnei a r_ok 0 out;
        A.jmp a retry;
        A.place a out;
        r_c
      end
    in
    let skip = A.label a in
    A.bnei a r_old 1 skip;
    A.host a (fun fr -> zero_tail h (Word.clean fr.Simcore.Vm.regs.(r_w)));
    A.place a skip

  let vm_ops t =
    Some
      {
        Rc_intf.vm_header = Protectors.header;
        vm_load =
          (fun a ~pid ~src ->
            let ga = Protectors.guard_addr (prot t) ~pid ~slot:0 in
            let r_ga = A.reg a and r_v = A.reg a and r_v' = A.reg a in
            A.movi a r_ga ga;
            A.read a r_v src;
            let retry = A.label a and got = A.label a in
            A.place a retry;
            A.write a r_ga r_v;
            A.read a r_v' src;
            A.beq a r_v' r_v got;
            A.mov a r_v r_v';
            A.jmp a retry;
            A.place a got;
            let r_a = A.reg a and r_zero = A.reg a in
            let out = A.label a in
            A.shri a r_a r_v 2;
            A.beqi a r_a 0 out;
            emit_inc a r_a;
            A.movi a r_zero 0;
            A.write a r_ga r_zero;
            A.place a out;
            r_v);
        vm_store_fresh =
          (fun a ~pid ~dst ~value ->
            let h = handle t pid in
            let r_old =
              if Opt.optimized then begin
                let r_old = A.reg a in
                A.fas a r_old dst value;
                r_old
              end
              else begin
                let r_cur = A.reg a in
                let retry = A.label a and out = A.label a in
                A.place a retry;
                A.read a r_cur dst;
                let r_ok = A.reg a in
                A.cas a r_ok dst ~expected:r_cur ~desired:value;
                A.bnei a r_ok 0 out;
                A.jmp a retry;
                A.place a out;
                r_cur
              end
            in
            let r_oa = A.reg a in
            let skip = A.label a in
            A.shri a r_oa r_old 2;
            A.beqi a r_oa 0 skip;
            emit_dec h a r_old;
            A.place a skip);
        vm_destruct =
          (fun a ~pid ~ptr ->
            let h = handle t pid in
            let r_a = A.reg a in
            let skip = A.label a in
            A.shri a r_a ptr 2;
            A.beqi a r_a 0 skip;
            emit_dec h a ptr;
            A.place a skip);
      }
end

module Plain = Make (struct
  let optimized = false
end)

module Optimized = Make (struct
  let optimized = true
end)

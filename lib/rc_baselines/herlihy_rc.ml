(** Lock-free reference counting in the style of Herlihy, Luchangco,
    Martin and Moir (TOCS 2005), built on their pass-the-buck idea: counts
    are updated eagerly, and when a count reaches zero the {e object} is
    protected from reclamation by per-process guards until no reader can
    hold it (contrast with the paper's scheme, which protects the
    {e count} — §3).

    [Make (struct let optimized = false end)] updates counts with CAS
    loops, as the original does ("a CAS loop instead of a fetch-and-add
    due to the use of a sticky counter", §2); [optimized = true] is the
    paper's improved version using fetch-and-add / fetch-and-store where
    applicable (§7.1). *)

module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word

module type OPT = sig
  val optimized : bool
end

module Make (Opt : OPT) : Rc_intf.S = struct
  let name = if Opt.optimized then "Herlihy (optimized)" else "Herlihy"

  type t = {
    mem : M.t;
    procs : int;
    reg : Rc_obj.registry;
    mutable prot : Protectors.t option;
    mutable handles : h array;
  }

  and h = {
    t : t;
    pid : int;
    pending : int list ref;
    mutable pend_len : int;
    mutable in_scan : bool;
    scan_batch : int;
  }

  type cls = Rc_obj.cls

  type snap = int

  let prot t = match t.prot with Some p -> p | None -> assert false

  let create mem ~procs =
    let reg = Rc_obj.create_registry () in
    let t = { mem; procs; reg; prot = None; handles = [||] } in
    t.prot <- Some (Protectors.create mem ~procs ~slots:1 ~reg);
    let scan_batch = max 8 procs in
    t.handles <-
      Array.init (procs + 1) (fun i ->
          {
            t;
            pid = (if i = procs then -1 else i);
            pending = ref [];
            pend_len = 0;
            in_scan = false;
            scan_batch;
          });
    t

  let handle t pid =
    if pid = -1 then t.handles.(t.procs) else t.handles.(pid)

  let register_class t ~tag ~fields ~ref_fields =
    Rc_obj.register t.reg ~tag ~fields ~ref_fields

  let field_addr = Protectors.field_addr

  let inc h w =
    let a = Rc_obj.count_addr w in
    if Opt.optimized then ignore (M.faa h.t.mem a 1)
    else begin
      (* The original's sticky-counter CAS loop. *)
      let rec loop () =
        let c = M.read h.t.mem a in
        if not (M.cas h.t.mem a ~expected:c ~desired:(c + 1)) then loop ()
      in
      loop ()
    end

  let rec dec h w =
    let a = Rc_obj.count_addr w in
    let old =
      if Opt.optimized then M.faa h.t.mem a (-1)
      else begin
        let rec loop () =
          let c = M.read h.t.mem a in
          if M.cas h.t.mem a ~expected:c ~desired:(c - 1) then c else loop ()
        in
        loop ()
      end
    in
    assert (old >= 1);
    if old = 1 then begin
      if Protectors.on_zero (prot h.t) ~pending:h.pending w then
        h.pend_len <- h.pend_len + 1;
      if h.pend_len >= h.scan_batch && not h.in_scan then ignore (scan h)
    end

  and scan h =
    h.in_scan <- true;
    let freed = Protectors.scan_pending (prot h.t) ~pending:h.pending ~dec:(dec h) in
    h.pend_len <- List.length !(h.pending);
    h.in_scan <- false;
    freed

  let make h cls fields =
    Rc_obj.alloc h.t.mem cls ~header:Protectors.header ~count0:1 ~fields

  let load h loc =
    if h.pid < 0 then begin
      (* Sequential setup path. *)
      let w = M.read h.t.mem loc in
      if not (Word.is_null w) then inc h w;
      w
    end
    else begin
      let w = Protectors.protect_loop (prot h.t) ~pid:h.pid ~slot:0 loc in
      if not (Word.is_null w) then begin
        inc h w;
        Protectors.write_guard (prot h.t) ~pid:h.pid ~slot:0 Word.null
      end;
      w
    end

  let swap h loc desired =
    if Opt.optimized then M.fas h.t.mem loc desired
    else begin
      let rec loop () =
        let cur = M.read h.t.mem loc in
        if M.cas h.t.mem loc ~expected:cur ~desired then cur else loop ()
      in
      loop ()
    end

  let store h loc desired =
    let old = swap h loc desired in
    if not (Word.is_null old) then dec h (Word.clean old)

  let cas h loc ~expected ~desired =
    (* [desired] is owned or protected by the caller, so its count is at
       least one and the increment cannot race a free. *)
    if not (Word.is_null desired) then inc h desired;
    if M.cas h.t.mem loc ~expected ~desired then begin
      if not (Word.is_null expected) then dec h (Word.clean expected);
      true
    end
    else begin
      if not (Word.is_null desired) then dec h (Word.clean desired);
      false
    end

  let cas_move h loc ~expected ~desired =
    if M.cas h.t.mem loc ~expected ~desired then begin
      if not (Word.is_null expected) then dec h (Word.clean expected);
      true
    end
    else false

  let peek_ref h loc = M.read h.t.mem loc

  let destruct h w = if not (Word.is_null w) then dec h (Word.clean w)

  let set_ref_field h obj i rc =
    let old = M.fas h.t.mem (field_addr obj i) rc in
    if not (Word.is_null old) then dec h (Word.clean old)

  let get_snapshot h loc = load h loc

  let snap_word s = s

  let snap_is_null s = Word.is_null s

  let release_snapshot h s = destruct h s

  let deferred t =
    Array.fold_left (fun acc h -> acc + List.length !(h.pending)) 0 t.handles

  let flush t =
    Protectors.clear_all_guards (prot t);
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iter (fun h -> if scan h > 0 then progress := true) t.handles
    done
end

module Plain = Make (struct
  let optimized = false
end)

module Optimized = Make (struct
  let optimized = true
end)

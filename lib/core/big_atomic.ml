module M = Simcore.Memory
module Word = Simcore.Word

type t = { drc : Drc.t; cls : Drc.cls; cell : int; n : int }

(* One class per width, shared across cells of the same Drc instance. *)
let class_for drc n =
  let tag = Printf.sprintf "big_atomic.%d" n in
  match Drc.find_class drc ~tag with
  | Some c -> c
  | None -> Drc.register_class drc ~tag ~fields:n ~ref_fields:[]

let create drc ~init =
  let n = Array.length init in
  assert (n >= 1);
  Array.iter (fun v -> assert (v >= 0)) init;
  let cls = class_for drc n in
  let cell = Drc.alloc_cells drc ~tag:"big_atomic.cell" ~n:1 in
  let h0 = Drc.handle drc (-1) in
  Drc.store h0 cell (Drc.make h0 cls init);
  { drc; cls; cell; n }

let width t = t.n

let read_box h box n =
  Array.init n (fun i -> Drc.read_word h (Drc.field_addr box i))

let load h t =
  let s = Drc.get_snapshot h t.cell in
  let v = read_box h (Word.clean (Drc.snap_word s)) t.n in
  Drc.release_snapshot h s;
  v

let store h t v =
  assert (Array.length v = t.n);
  Drc.store h t.cell (Drc.make h t.cls v)

let cas h t ~expected ~desired =
  assert (Array.length expected = t.n && Array.length desired = t.n);
  let rec loop () =
    let s = Drc.get_snapshot h t.cell in
    let box = Word.clean (Drc.snap_word s) in
    let current = read_box h box t.n in
    if current <> expected then begin
      Drc.release_snapshot h s;
      false
    end
    else begin
      let fresh = Drc.make h t.cls desired in
      if Drc.cas_move h t.cell ~expected:box ~desired:fresh then begin
        Drc.release_snapshot h s;
        true
      end
      else begin
        Drc.destruct h fresh;
        Drc.release_snapshot h s;
        (* The box changed under us; the new box may still hold the
           expected value. *)
        loop ()
      end
    end
  in
  loop ()

let destroy h t = Drc.store h t.cell Word.null

(** Concurrent deferred reference counting — the paper's contribution
    (§5), as a library over the simulated machine.

    A {e managed object} is a heap block whose word 0 is its reference
    count and whose remaining words are user fields; fields declared as
    reference fields hold counted pointers and are destructed recursively
    when the object dies. Any word of simulated memory (a field of a
    managed object, or a standalone cell from {!alloc_cells}) can act as
    an [atomic_rc_ptr]: a mutable shared location holding a counted
    pointer, operated on with {!load}, {!store}, {!cas} and
    {!get_snapshot}.

    The two ideas from the paper:

    - {e Deferred decrements} (Fig. 3): discarding a reference retires the
      pointer through acquire-retire instead of decrementing eagerly; the
      decrement is applied only when no in-flight increment can race it,
      so a zero count means the object is immediately safe to delete.
      At most O(P²) decrements are deferred (Theorem 1).
    - {e Snapshots / deferred increments} (Fig. 4): short-lived references
      (data-structure traversal) skip the increment entirely, parking
      their protection in one of [snapshot_slots] announcement slots; if
      the slots run out, the oldest snapshot's deferred increment is
      applied and its slot recycled round-robin.

    References are single pointer words with the low bit available as a
    user mark ({!Simcore.Word}), so lock-free structures with marked links
    (Harris list, Natarajan–Mittal tree) port directly (§3.1). *)

type t

type h
(** Per-process handle. *)

type cls
(** A registered object class: field count and which fields are counted
    references. *)

type rc = int
(** An owned counted reference: a pointer word whose object's count
    includes this reference. [Word.null] is the null reference. *)

type snap
(** A snapshot: a protected borrowed reference (Fig. 4). Process-local
    and, as in the paper, move-only — it is released exactly once. *)

val create :
  ?mode:Acquire_retire.Ar.mode ->
  ?snapshots:bool ->
  ?snapshot_slots:int ->
  ?eject_work:int ->
  Simcore.Memory.t ->
  procs:int ->
  t
(** [~snapshots:false] builds the Fig. 3-only variant (the benchmark's
    "DRC" line): [get_snapshot] degrades to [load] and [destruct]
    decrements eagerly. Default: snapshots on, 7 snapshot slots,
    lock-free acquire. *)

val memory : t -> Simcore.Memory.t

val handle : t -> int -> h
(** [handle t pid]; [pid = -1] is the sequential setup handle. *)

val ar : t -> Acquire_retire.Ar.t
(** The underlying acquire-retire instance (for bound audits). *)

(** {1 Classes and object creation} *)

val register_class :
  ?weak:bool ->
  ?weak_fields:int list ->
  t ->
  tag:string ->
  fields:int ->
  ref_fields:int list ->
  cls
(** [~weak:true] lays the object out with a weak count behind its fields
    so that {!weak_of} / {!upgrade} are available for its instances.
    Fields listed in [weak_fields] hold weak references, dropped (not
    destructed) when the object dies. *)

val cls_tag : cls -> string

val find_class : t -> tag:string -> cls option

val make : h -> cls -> int array -> rc
(** [make h cls fields] allocates a managed object with the given initial
    field words and count 1 (the returned reference). Words in
    [ref_fields] positions transfer ownership (move). *)

val field_addr : rc -> int -> int
(** [field_addr obj i] is the address of field [i]; usable with all
    location operations below and with {!Simcore.Memory} reads. Accepts a
    marked or unmarked pointer word. *)

(** {1 Counted-location operations (Fig. 3)} *)

val load : h -> int -> rc
(** Atomically read the location and return a new owned reference
    (protect count, increment, release). *)

val store : h -> int -> rc -> unit
(** Move-store: the location takes over the caller's reference; the
    overwritten reference is retired. *)

val store_copy : h -> int -> rc -> unit
(** Copy-store: increments first (the caller keeps its reference). *)

val cas : h -> int -> expected:int -> desired:int -> bool
(** Copy-semantics CAS. [desired] may be borrowed (e.g. read from a field
    of a snapshot-protected object): it is announced for the duration, and
    on success the location gets its own increment; [expected] is compared
    as a full word (mark included) and retired on success. *)

val cas_move : h -> int -> expected:int -> desired:rc -> bool
(** Move-semantics CAS: on success the location consumes the caller's
    reference (no increment); on failure the caller keeps it. *)

val try_mark : h -> int -> expected:int -> bool
(** [try_mark h loc ~expected] CASes [expected → expected lor 1]: sets the
    deletion mark without touching any count (§3.1 marked pointers). *)

val try_flag : h -> int -> expected:int -> bool
(** Same for the second tag bit (Natarajan–Mittal edge tagging). *)

val destruct : h -> rc -> unit
(** Discard an owned reference. With snapshots enabled this defers the
    decrement (Fig. 4); otherwise it decrements eagerly (Fig. 3). *)

val dup : h -> rc -> rc
(** Copy an owned reference (increments). *)

val read_word : h -> int -> int
(** Plain charged read of a shared word (an unprotected borrow; only safe
    while the enclosing object is protected). *)

val set_field : h -> rc -> int -> rc -> unit
(** [set_field h obj i rc]: move-assign reference field [i] of an
    unpublished object, discarding the overwritten reference. *)

(** {1 Snapshots (Fig. 4)} *)

val get_snapshot : h -> int -> snap
(** Atomically read the location into a snapshot: protection without an
    increment while a free slot exists, falling back to an applied
    (deferred) increment when all slots are busy. *)

val snap_word : snap -> int
(** The pointer word (may carry a mark). *)

val snap_is_null : snap -> bool

val release_snapshot : h -> snap -> unit
(** Release; applies the deferred increment's matching decrement if this
    snapshot's slot was recycled. *)

val snap_to_rc : h -> snap -> rc
(** Promote a snapshot to an owned reference (increment) and release it. *)

(** {1 Weak references}

    The cycle-breaking extension the paper's §9 calls for. A weak
    reference keeps the object's block (not the object) alive; [upgrade]
    turns it back into a counted reference iff the object has not died,
    using the same acquire-retire protection as [load] — the announced
    pointer holds pending strong decrements back, so an observed
    non-zero count cannot race to zero mid-upgrade. Only instances of
    classes registered with [~weak:true] support these. *)

type weak = int
(** A weak reference word. *)

val weak_of : h -> rc -> weak
(** Create a weak reference from a strong one (the strong reference is
    retained by the caller). *)

val upgrade : h -> weak -> rc option
(** [Some rc] if the object is still alive; [None] after its strong
    count reached zero. *)

val drop_weak : h -> weak -> unit
(** Release; the last weak release (including the object's own) frees
    the block. *)

(** {1 Plain shared cells} *)

val alloc_cells : t -> tag:string -> n:int -> int
(** A block of [n] uncounted shared words, line-aligned — root locations
    for benchmarks ([atomic_rc_ptr] array). Initialized to null. *)

(** {1 Accounting and quiescence} *)

val deferred_decrements : t -> int
(** Currently deferred decrements (retired, not ejected) — Theorem 1's
    O(P²) quantity. *)

val flush : t -> unit
(** Quiescent cleanup (outside a run): eject everything ejectable and
    apply the decrements, cascading deletes, until a fixed point. Live
    snapshots still protect their objects. *)

(**/**)

val set_trace : (string -> int -> unit) -> unit
(** Debug instrumentation: called with a site label and the object's
    count address on every increment, decrement and retire. *)

val vm_emit_load : t -> Simcore.Vm.Asm.t -> pid:int -> src:int -> int
(** Emit the compiled form of {!load} (lock-free acquire mode only;
    sanitizer off). Returns the register holding the loaded word. *)

val vm_emit_store_fresh :
  t -> Simcore.Vm.Asm.t -> pid:int -> dst:int -> value:int -> unit
(** Emit the compiled form of {!store} for a fresh owned reference. *)

val vm_emit_destruct : t -> Simcore.Vm.Asm.t -> pid:int -> ptr:int -> unit
(** Emit the compiled form of {!destruct}. *)

(** Atomic loads, stores and CAS of multi-word values — the
    generalization described in the preliminary (arXiv) version of the
    paper ("safe atomic loads and stores of more general types other
    than reference-counted pointers", §2).

    A value of [width] words is boxed in a managed object; the cell holds
    a counted pointer to the current box. Readers take a snapshot of the
    box (no counter traffic) and copy the words out; writers install a
    fresh box; [cas] compares by {e value}. All the safety comes from the
    deferred reference counting underneath — no epochs or retire calls
    appear at this level, and torn reads are impossible by
    construction. *)

type t

val create : Drc.t -> init:int array -> t
(** A new atomic cell holding [init] (width = [Array.length init] ≥ 1,
    values non-negative). *)

val width : t -> int

val load : Drc.h -> t -> int array
(** An atomic copy of the current value. *)

val store : Drc.h -> t -> int array -> unit

val cas : Drc.h -> t -> expected:int array -> desired:int array -> bool
(** Value-comparing CAS: succeeds iff the current value equals
    [expected] (and the underlying box was not concurrently replaced by
    an equal value mid-flight — the usual lock-free retry discipline is
    internal). *)

val destroy : Drc.h -> t -> unit
(** Release the cell's box (the cell must no longer be used). *)

module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word
module Ar = Acquire_retire.Ar
module Tele = Simcore.Telemetry
module Prof = Simcore.Profiler

type rc = int

type cls = {
  tag : string;
  n_fields : int;
  ref_fields : int list;
  weak_fields : int list;
  weak : bool;
}

type t = {
  memory : M.t;
  artbl : Ar.t;
  procs : int;
  snapshots : bool;
  snap_slots : int;  (* snapshot slots per process (op slot excluded) *)
  classes : (string, cls) Hashtbl.t;
  mutable handles : h array;
  (* Telemetry: [drc.deferred_decs]'s high-water mark is Theorem 1's
     outstanding-deferred-decrement bound, measured continuously. *)
  g_deferred : Tele.gauge;
  c_snap_recycle : Tele.counter;
  c_eager : Tele.counter;
}

and h = {
  t : t;
  pid : int;
  arh : Ar.h;
  mutable next_takeover : int;  (* round-robin cursor, Fig. 4 *)
}

(* [s_slot >= 1]: protected by that announcement slot.
   [s_slot = -2]: owned reference (snapshots disabled fallback). *)
type snap = { s_word : int; s_slot : int }

let op_slot = 0

(* Debug instrumentation: receives (site, address) for every count
   event. Used by tests to audit balance; defaults to a no-op. *)
let trace : (string -> int -> unit) ref = ref (fun _ _ -> ())

let set_trace f = trace := f

let create ?(mode = `Lockfree) ?(snapshots = true) ?(snapshot_slots = 7)
    ?(eject_work = 4) memory ~procs =
  let slots_per_proc = 1 + if snapshots then snapshot_slots else 0 in
  let artbl = Ar.create ~mode memory ~procs ~slots_per_proc ~eject_work in
  let tele = M.telemetry memory in
  let t =
    {
      memory;
      artbl;
      procs;
      snapshots;
      snap_slots = (if snapshots then snapshot_slots else 0);
      classes = Hashtbl.create 16;
      handles = [||];
      g_deferred = Tele.gauge tele "drc.deferred_decs";
      c_snap_recycle = Tele.counter tele "drc.snap_recycle";
      c_eager = Tele.counter tele "drc.eager_dec";
    }
  in
  t.handles <-
    Array.init (procs + 1) (fun i ->
        let pid = if i = procs then -1 else i in
        { t; pid; arh = Ar.handle artbl pid; next_takeover = 0 });
  t

let memory t = t.memory

let ar t = t.artbl

let handle t pid = if pid = -1 then t.handles.(t.procs) else t.handles.(pid)

let register_class ?(weak = false) ?(weak_fields = []) t ~tag ~fields
    ~ref_fields =
  assert (not (Hashtbl.mem t.classes tag));
  List.iter (fun i -> assert (i >= 0 && i < fields)) (ref_fields @ weak_fields);
  let c = { tag; n_fields = fields; ref_fields; weak_fields; weak } in
  Hashtbl.add t.classes tag c;
  c

let cls_tag c = c.tag

let find_class t ~tag = Hashtbl.find_opt t.classes tag

let field_addr obj i = Word.to_addr obj + 1 + i

let count_addr obj = Word.to_addr obj

(* {1 Counting primitives} *)

let increment h w =
  !trace "inc" (count_addr w);
  ignore (M.faa h.t.memory (count_addr w) 1)

(* Deletion: recursively discard reference fields, then free. Field
   discards are themselves deferred (retire), so destruction cascades
   without deep recursion. *)
let rec decrement h w =
  !trace "dec" (count_addr w);
  let old = M.faa h.t.memory (count_addr w) (-1) in
  assert (old >= 1);
  if old = 1 then delete h w

and delete h w =
  let base = Word.to_addr w in
  let cls = cls_of h w in
  List.iter
    (fun i ->
      let fw = M.read h.t.memory (base + 1 + i) in
      if not (Word.is_null fw) then retire_and_eject h (Word.clean fw))
    cls.ref_fields;
  List.iter
    (fun i ->
      let fw = M.read h.t.memory (base + 1 + i) in
      if not (Word.is_null fw) then weak_decrement h (Word.clean fw))
    cls.weak_fields;
  if cls.weak then begin
    (* Logical death: fields are gone; the block itself survives until
       the last weak reference drops (it holds one collectively for the
       strong side). *)
    weak_decrement h w
  end
  else M.free h.t.memory base

and cls_of h w =
  let base = Word.to_addr w in
  match M.block_tag h.t.memory base with
  | Some tag -> (
      match Hashtbl.find_opt h.t.classes tag with
      | Some c -> c
      | None -> invalid_arg ("Drc.delete: unregistered class " ^ tag))
  | None -> invalid_arg "Drc.delete: not a block"

and weak_cell h w =
  let cls = cls_of h w in
  assert cls.weak;
  Word.to_addr w + 1 + cls.n_fields

and weak_decrement h w =
  let old = M.faa h.t.memory (weak_cell h w) (-1) in
  assert (old >= 1);
  if old = 1 then M.free h.t.memory (Word.to_addr w)

and retire_and_eject h w =
  !trace "retire" (count_addr w);
  Ar.retire h.arh w;
  Tele.set_gauge h.t.g_deferred (Ar.delayed h.t.artbl);
  (* Executing an ejected handle's deferred decrement (and any delete
     cascade it triggers) is deferral work; [Ar.eject] attributes its
     own scan steps itself. *)
  (match Ar.eject h.arh with
  | Some e -> Prof.with_phase Prof.Drc_defer (fun () -> decrement h e)
  | None -> ());
  Tele.set_gauge h.t.g_deferred (Ar.delayed h.t.artbl)

(* {1 Object creation} *)

let make h cls fields =
  assert (Array.length fields = cls.n_fields);
  let extra = if cls.weak then 1 else 0 in
  let base = M.alloc h.t.memory ~tag:cls.tag ~size:(1 + cls.n_fields + extra) in
  M.write h.t.memory base 1;
  Array.iteri (fun i v -> M.write h.t.memory (base + 1 + i) v) fields;
  if cls.weak then M.write h.t.memory (base + 1 + cls.n_fields) 1;
  Word.of_addr base

(* {1 Fig. 3 operations} *)

let load h loc =
  let w = Ar.acquire h.arh ~slot:op_slot loc in
  if not (Word.is_null w) then increment h w;
  Ar.release h.arh ~slot:op_slot;
  w

let store h loc desired =
  let old = M.fas h.t.memory loc desired in
  if not (Word.is_null old) then retire_and_eject h (Word.clean old)

let store_copy h loc desired =
  if not (Word.is_null desired) then increment h desired;
  store h loc desired

let cas h loc ~expected ~desired =
  (* Announce [desired] so its count cannot race to zero between our CAS
     succeeding and our increment landing (Fig. 3, lines 17–27). *)
  if not (Word.is_null desired) then Ar.announce_raw h.arh ~slot:op_slot desired;
  let ok = M.cas h.t.memory loc ~expected ~desired in
  if ok then begin
    if not (Word.is_null desired) then increment h desired;
    if not (Word.is_null expected) then
      retire_and_eject h (Word.clean expected)
  end;
  if not (Word.is_null desired) then Ar.release h.arh ~slot:op_slot;
  ok

let cas_move h loc ~expected ~desired =
  let ok = M.cas h.t.memory loc ~expected ~desired in
  if ok then begin
    if not (Word.is_null expected) then
      retire_and_eject h (Word.clean expected)
  end;
  ok

let try_mark h loc ~expected =
  assert (not (Word.marked expected));
  M.cas h.t.memory loc ~expected ~desired:(Word.with_mark expected)

let try_flag h loc ~expected =
  assert (not (Word.flagged expected));
  M.cas h.t.memory loc ~expected ~desired:(Word.with_flag expected)

let destruct h w =
  if not (Word.is_null w) then
    if h.t.snapshots then retire_and_eject h (Word.clean w)
    else begin
      Tele.incr h.t.c_eager;
      decrement h (Word.clean w)
    end

let dup h w =
  if not (Word.is_null w) then increment h w;
  w

let read_word h loc = M.read h.t.memory loc

let set_field h obj i v =
  let old = M.fas h.t.memory (field_addr obj i) v in
  destruct h old

(* {1 Fig. 4: snapshots} *)

(* Find a free snapshot slot, or recycle one round-robin by applying its
   deferred increment. Slot indices 1..snap_slots; 0 is the op slot. *)
let get_slot h =
  let t = h.t in
  let rec scan s =
    if s > t.snap_slots then begin
      let s = 1 + h.next_takeover in
      let occupant = Ar.announced h.arh ~slot:s in
      (* The occupant's protection becomes a real count; whoever holds
         that snapshot will observe the slot changed and decrement. *)
      Tele.incr h.t.c_snap_recycle;
      if not (Word.is_null occupant) then increment h occupant;
      h.next_takeover <- (h.next_takeover + 1) mod t.snap_slots;
      s
    end
    else if Word.is_null (Ar.announced h.arh ~slot:s) then s
    else scan (s + 1)
  in
  scan 1

let get_snapshot h loc =
  if (not h.t.snapshots) || h.pid < 0 then { s_word = load h loc; s_slot = -2 }
  else begin
    let slot = get_slot h in
    let w = Ar.acquire h.arh ~slot loc in
    { s_word = w; s_slot = slot }
  end

let snap_word s = s.s_word

let snap_is_null s = Word.is_null s.s_word

let release_snapshot h s =
  if not (Word.is_null s.s_word) then
    if s.s_slot = -2 then destruct h s.s_word
    else if Ar.announced h.arh ~slot:s.s_slot = s.s_word then
      Ar.release h.arh ~slot:s.s_slot
    else begin
      (* Slot was recycled under us: the deferred increment was applied,
         so we owe an eager decrement (Fig. 4's slow path). *)
      Tele.incr h.t.c_eager;
      decrement h (Word.clean s.s_word)
    end

let snap_to_rc h s =
  if Word.is_null s.s_word then s.s_word
  else begin
    let w = Word.clean s.s_word in
    increment h w;
    release_snapshot h s;
    w
  end

(* {1 Weak references (the cycle-breaking extension of the paper's
   par. 9)}

   A weak reference keeps only the block (via the weak count behind the
   fields), never the object. Upgrading reuses the deferred-decrement
   machinery: announcing the pointer in the operation slot holds back any
   pending strong decrement from being ejected, so a strong count
   observed to be at least one cannot race to zero before our increment
   lands -- the same argument as Fig. 3's load. *)

type weak = int

let weak_of h w =
  assert (cls_of h w).weak;
  ignore (M.faa h.t.memory (weak_cell h w) 1);
  ignore h;
  Word.clean w

let drop_weak h w = weak_decrement h w

let upgrade h w =
  let w = Word.clean w in
  Ar.announce_raw h.arh ~slot:op_slot w;
  let rec try_up () =
    let c = M.read h.t.memory (count_addr w) in
    if c <= 0 then None
    else if M.cas h.t.memory (count_addr w) ~expected:c ~desired:(c + 1) then
      Some w
    else try_up ()
  in
  let r = try_up () in
  Ar.release h.arh ~slot:op_slot;
  r

(* {1 Cells, accounting, quiescence} *)

let alloc_cells t ~tag ~n = M.alloc t.memory ~tag ~size:n

let deferred_decrements t = Ar.delayed t.artbl

let flush t =
  Prof.with_phase Prof.Drc_defer @@ fun () ->
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun h ->
        let ejected = Ar.eject_all h.arh in
        if ejected <> [] then progress := true;
        List.iter (fun w -> decrement h w) ejected)
      t.handles
  done;
  Tele.set_gauge t.g_deferred (Ar.delayed t.artbl)

(* {1 Compiled forms}

   The Fig. 3 fast paths emitted into a {!Simcore.Vm} stream; tick-,
   RNG- and heap-identical to [load]/[store]/[destruct] when the heap
   sanitizer is off (the only configuration the workload drivers compile
   under — the sanitizer's slot-protection bookkeeping lives in the
   closure path). Retire/eject and delete cascades stay host calls.
   Only meaningful for the lock-free acquire mode; the wait-free
   swcopy slow path is not compiled. *)

module A = Simcore.Vm.Asm

let vm_emit_load t a ~pid ~src =
  let h = handle t pid in
  let dst = Ar.slot_addr h.arh ~slot:op_slot in
  let r_dst = A.reg a and r_v = A.reg a and r_v' = A.reg a in
  let r_enc = A.reg a in
  A.movi a r_dst dst;
  A.read a r_v src;
  let retry = A.label a and got = A.label a in
  (* acquire_lockfree: announce (Swcopy value encoding: [v lsl 1]),
     confirm the source still holds the announced word, retry. *)
  A.place a retry;
  A.shli a r_enc r_v 1;
  A.write a r_dst r_enc;
  A.read a r_v' src;
  A.beq a r_v' r_v got;
  A.mov a r_v r_v';
  A.jmp a retry;
  A.place a got;
  let r_a = A.reg a and r_t = A.reg a in
  let rel = A.label a in
  A.shri a r_a r_v 2;
  A.beqi a r_a 0 rel;
  A.faai a r_t r_a 1;
  A.place a rel;
  (* release: announce null (encodes to 0) *)
  let r_zero = A.reg a in
  A.movi a r_zero 0;
  A.write a r_dst r_zero;
  r_v

let vm_emit_store_fresh t a ~pid ~dst ~value =
  let h = handle t pid in
  let r_old = A.reg a and r_oa = A.reg a in
  let skip = A.label a in
  A.fas a r_old dst value;
  A.shri a r_oa r_old 2;
  A.beqi a r_oa 0 skip;
  A.host a (fun fr ->
      retire_and_eject h (Word.clean fr.Simcore.Vm.regs.(r_old)));
  A.place a skip

let vm_emit_destruct t a ~pid ~ptr =
  let h = handle t pid in
  let r_a = A.reg a in
  let skip = A.label a in
  A.shri a r_a ptr 2;
  A.beqi a r_a 0 skip;
  if t.snapshots then
    A.host a (fun fr -> retire_and_eject h (Word.clean fr.Simcore.Vm.regs.(ptr)))
  else begin
    let c_eager = A.counter_cell a t.c_eager in
    let r_old = A.reg a in
    A.cellinc a c_eager 1;
    A.faai a r_old r_a (-1);
    A.bnei a r_old 1 skip;
    A.host a (fun fr -> delete h (Word.clean fr.Simcore.Vm.regs.(ptr)))
  end;
  A.place a skip

module M = Simcore.Memory
module Proc = Simcore.Proc
module Word = Simcore.Word
module Tele = Simcore.Telemetry
module San = Simcore.Sanitizer
module Prof = Simcore.Profiler

type mode = [ `Lockfree | `Waitfree ]

(* One in-progress ejectAll pass (deamortized, §6): phase 0 reads
   announcement slots into [plist], phase 1 diffs the snapshotted retired
   list against it. *)
type pass = {
  mutable active : bool;
  mutable phase : int;
  mutable slot_cursor : int;
  plist : (int, int ref) Hashtbl.t;  (* announced addr -> multiplicity *)
  mutable scanning : int list;  (* snapshot of the retired list *)
  mutable ejected : int;  (* handles moved to flist by this pass *)
}

type t = {
  memory : M.t;
  swc : Swcopy.ctx;
  procs : int;
  slots : int;
  eject_work : int;
  ar_mode : mode;
  fast_retries : int;
  ann : Swcopy.dst array array;  (* [procs][slots] *)
  (* Sanitizer protocol auditing: one slot-protection key per
     announcement slot. Only *validated* announcements are registered
     (at the point the acquire loop confirms the source still holds the
     announced word), so a reported violation is always genuine. *)
  san : San.t;
  san_base : int;
  mutable handles : h array;
  mutable n_delayed : int;
  (* Telemetry: [ar.delayed]'s high-water mark is Theorem 2's
     retired-not-ejected bound, measured continuously. *)
  g_delayed : Tele.gauge;
  c_passes : Tele.counter;
  c_scan_steps : Tele.counter;
  h_pass_size : Tele.hist;
  h_eject_batch : Tele.hist;
}

and h = {
  t : t;
  pid : int;  (* procs = setup handle *)
  mutable rlist : int list;  (* retired words awaiting a scan *)
  mutable rlen : int;
  mutable flist : int list;  (* ejected words ready to return *)
  pass : pass;
}

let create ?(mode = `Lockfree) memory ~procs ~slots_per_proc ~eject_work =
  let swc = Swcopy.create_ctx memory ~procs in
  (* One cache line of slots per process (Fig. 4: "the eight total
     announcement slots of a process fit on a single cache line"). *)
  let ann =
    Array.init procs (fun _ ->
        Swcopy.make_packed swc ~n:slots_per_proc ~init:Word.null)
  in
  let tele = M.telemetry memory in
  let san = M.sanitizer memory in
  let t =
    {
      memory;
      swc;
      procs;
      slots = slots_per_proc;
      san;
      san_base = San.register_slots san ~n:(procs * slots_per_proc);
      eject_work = max 1 eject_work;
      ar_mode = mode;
      fast_retries = 3;
      ann;
      handles = [||];
      n_delayed = 0;
      g_delayed = Tele.gauge tele "ar.delayed";
      c_passes = Tele.counter tele "ar.scan_passes";
      c_scan_steps = Tele.counter tele "ar.scan_steps";
      h_pass_size = Tele.hist tele "ar.pass_size";
      h_eject_batch = Tele.hist tele "ar.eject_batch";
    }
  in
  let fresh_handle pid =
    {
      t;
      pid;
      rlist = [];
      rlen = 0;
      flist = [];
      pass =
        {
          active = false;
          phase = 0;
          slot_cursor = 0;
          plist = Hashtbl.create 64;
          scanning = [];
          ejected = 0;
        };
    }
  in
  t.handles <- Array.init (procs + 1) fresh_handle;
  t

let mem t = t.memory

let slots_per_proc t = t.slots

let handle t pid =
  if pid = -1 then t.handles.(t.procs)
  else begin
    assert (pid >= 0 && pid < t.procs);
    t.handles.(pid)
  end

(* The setup handle owns no announcement slots; its operations run
   sequentially (outside any simulation), so protection degrades to
   plain reads and no-ops. *)
let is_setup h = h.pid >= h.t.procs

let slot_dst h slot =
  assert (h.pid < h.t.procs);
  assert (slot >= 0 && slot < h.t.slots);
  h.t.ann.(h.pid).(slot)

let slot_addr h ~slot = Swcopy.addr (slot_dst h slot)

(* Sanitizer slot-protection key of (pid, slot). *)
let san_key h slot = h.t.san_base + (h.pid * h.t.slots) + slot

(* The slot is about to be overwritten: whatever validated protection it
   held is gone from this point on (conservatively early). *)
let san_begin h slot = San.protect h.t.san ~key:(san_key h slot) ~pid:h.pid 0

(* The announced word has been validated against its source: the
   protection is honored from here until the slot changes. *)
let san_validated h slot w =
  San.protect h.t.san ~key:(san_key h slot) ~pid:h.pid (Word.to_addr w)

(* The lock-free acquire: announce, confirm the source still holds the
   announced word, retry otherwise. *)
let acquire_lockfree h ~slot src =
  let dst = slot_dst h slot in
  san_begin h slot;
  let rec loop v =
    Swcopy.write h.t.swc dst v;
    let v' = M.read h.t.memory src in
    if v' = v then begin
      san_validated h slot v;
      v
    end
    else loop v'
  in
  loop (M.read h.t.memory src)

(* Fast-path/slow-path wait-free acquire (§7): a few lock-free attempts,
   then one atomic copy. *)
let acquire_waitfree h ~slot src =
  let dst = slot_dst h slot in
  san_begin h slot;
  let rec fast v attempts =
    Swcopy.write h.t.swc dst v;
    let v' = M.read h.t.memory src in
    if v' = v then begin
      san_validated h slot v;
      v
    end
    else if attempts <= 0 then begin
      let w = Swcopy.swcopy h.t.swc dst ~src in
      san_validated h slot w;
      w
    end
    else fast v' (attempts - 1)
  in
  fast (M.read h.t.memory src) h.t.fast_retries

let acquire h ~slot src =
  if is_setup h then M.read h.t.memory src
  else
    match h.t.ar_mode with
    | `Lockfree -> acquire_lockfree h ~slot src
    | `Waitfree -> acquire_waitfree h ~slot src

let release h ~slot =
  if not (is_setup h) then begin
    san_begin h slot;
    Swcopy.write h.t.swc (slot_dst h slot) Word.null
  end

(* Owner-side read: the owner can never observe a foreign in-flight copy
   in its own slot, so no read-side protection is needed. *)
let announced h ~slot =
  if is_setup h then Word.null else Swcopy.read_raw h.t.swc (slot_dst h slot)

(* The caller guarantees validity of [w] (it holds a counted reference),
   so the protection is honored from the moment it is announced. *)
let announce_raw h ~slot w =
  if not (is_setup h) then begin
    san_begin h slot;
    Swcopy.write h.t.swc (slot_dst h slot) w;
    san_validated h slot w
  end

let retire h w =
  h.rlist <- w :: h.rlist;
  h.rlen <- h.rlen + 1;
  h.t.n_delayed <- h.t.n_delayed + 1;
  Tele.set_gauge h.t.g_delayed h.t.n_delayed

let start_pass h =
  let p = h.pass in
  Tele.incr h.t.c_passes;
  Tele.observe h.t.h_pass_size h.rlen;
  p.active <- true;
  p.phase <- 0;
  p.slot_cursor <- 0;
  p.ejected <- 0;
  Hashtbl.reset p.plist;
  p.scanning <- h.rlist;
  h.rlist <- [];
  h.rlen <- 0

(* One unit of scan work: read one announcement slot, or diff one
   retired handle. *)
let pass_step h =
  let t = h.t in
  let p = h.pass in
  Tele.incr t.c_scan_steps;
  if p.phase = 0 then begin
    let total = t.procs * t.slots in
    if p.slot_cursor >= total then p.phase <- 1
    else begin
      let pid = p.slot_cursor / t.slots and s = p.slot_cursor mod t.slots in
      p.slot_cursor <- p.slot_cursor + 1;
      let w = Swcopy.read_raw t.swc t.ann.(pid).(s) in
      if not (Word.is_null w) then begin
        let key = Word.to_addr w in
        match Hashtbl.find_opt p.plist key with
        | Some r -> incr r
        | None -> Hashtbl.add p.plist key (ref 1)
      end
    end
  end
  else begin
    match p.scanning with
    | [] ->
        p.active <- false;
        Tele.observe t.h_eject_batch p.ejected
    | w :: rest -> (
        Proc.pay 1;
        p.scanning <- rest;
        let key = Word.to_addr w in
        match Hashtbl.find_opt p.plist key with
        | Some r when !r > 0 ->
            (* Announced: keep for the next pass (one per announcement). *)
            decr r;
            h.rlist <- w :: h.rlist;
            h.rlen <- h.rlen + 1
        | Some _ | None ->
            p.ejected <- p.ejected + 1;
            h.flist <- w :: h.flist)
  end

let eject h =
  if (not h.pass.active) && h.rlen > 0 then start_pass h;
  if h.pass.active then begin
    (* The amortized scan work a deferred-RC operation carries along —
       announcement reads and retire-list diffing — is deferral
       overhead, not operation time. *)
    Prof.with_phase Prof.Drc_defer @@ fun () ->
    Swcopy.enter h.t.swc;
    let n = ref h.t.eject_work in
    while h.pass.active && !n > 0 do
      pass_step h;
      decr n
    done;
    Swcopy.exit h.t.swc
  end;
  match h.flist with
  | [] -> None
  | w :: rest ->
      h.flist <- rest;
      h.t.n_delayed <- h.t.n_delayed - 1;
      Tele.set_gauge h.t.g_delayed h.t.n_delayed;
      Some w

let delayed t = t.n_delayed

let eject_all h =
  Prof.with_phase Prof.Drc_defer @@ fun () ->
  let out = ref [] in
  let drain () =
    let n = ref 0 in
    let rec go () =
      match h.flist with
      | [] -> ()
      | w :: rest ->
          h.flist <- rest;
          h.t.n_delayed <- h.t.n_delayed - 1;
          Tele.set_gauge h.t.g_delayed h.t.n_delayed;
          out := w :: !out;
          incr n;
          go ()
    in
    go ();
    !n
  in
  (* A pass interrupted mid-run holds a stale announcement snapshot; it
     may conservatively keep handles that are free by now. Complete it,
     then keep running passes with fresh snapshots until one ejects
     nothing — only a fresh pass can conclude "genuinely announced". *)
  while h.pass.active do
    pass_step h
  done;
  ignore (drain ());
  let progress = ref true in
  while !progress && h.rlen > 0 do
    start_pass h;
    while h.pass.active do
      pass_step h
    done;
    progress := drain () > 0
  done;
  !out

(** Acquire-retire (§4 and §6 of the paper): a generalization of hazard
    pointers that permits {e multiple concurrent retires of the same
    handle}, which plain hazard pointers forbid and which reference
    counts require (three concurrent discards of pointers to one object
    retire its counter three times).

    Operations and their guarantees (Definition 4.1):

    - [acquire h ~slot src] reads the pointer word stored at address
      [src], announces it in [slot], and returns it. Two flavours, chosen
      at [create]: [`Lockfree] (announce, re-read, retry — constant
      amortized in practice), [`Waitfree] (a fast path of bounded retries
      falling back to an atomic {!Swcopy.swcopy}, constant worst-case —
      the fast-path/slow-path methodology of §7).
    - [release h ~slot] withdraws the announcement.
    - [retire h w] marks one use of the handle as discarded.
    - [eject h] performs O(1) deamortized steps of the current scan pass
      and returns a previously retired handle that is now safe, if one is
      ready. If every [retire] is followed by at least one [eject], at
      most O(K·P) retires are outstanding (Theorem 2, K = total slots).

    A scan pass snapshots the process's retired list, reads every
    announcement slot into a multiset, and ejects the multiset difference
    — a handle retired s times and announced t times yields s − t ejects
    (§6). Announcement reads and protected-set bookkeeping cost simulated
    ticks like everything else. *)

type t

type h
(** Per-process handle. *)

type mode = [ `Lockfree | `Waitfree ]

val create :
  ?mode:mode ->
  Simcore.Memory.t ->
  procs:int ->
  slots_per_proc:int ->
  eject_work:int ->
  t
(** [eject_work] = scan steps performed per [eject] call; 2 or more makes
    the outstanding-retires bound O(K·P) (see DESIGN.md §4). *)

val mem : t -> Simcore.Memory.t

val slots_per_proc : t -> int

val handle : t -> int -> h
(** [handle t pid]. [pid = -1] designates the sequential setup handle
    (used outside simulations); it owns no announcement slots. *)

val acquire : h -> slot:int -> int -> int
(** [acquire h ~slot src]: protect and return the pointer word at [src]. *)

val slot_addr : h -> slot:int -> int
(** Heap address of the handle's announcement slot — a per-(pid, slot)
    constant, exposed so compiled instruction streams ({!Simcore.Vm})
    can announce with plain stores. Not valid on the setup handle. *)

val release : h -> slot:int -> unit

val announced : h -> slot:int -> int
(** Current announcement in the slot ({!Simcore.Word.null} if empty). *)

val announce_raw : h -> slot:int -> int -> unit
(** Overwrite the slot with an already-protected word. Used by the
    snapshot machinery when taking over a slot (Fig. 4 [get_slot]). *)

val retire : h -> int -> unit
(** [retire h w]: the handle (an unmarked pointer word) is discarded. *)

val eject : h -> int option
(** Advance the scan; return an ejected handle if one is available. *)

val delayed : t -> int
(** Retires not yet ejected — the Theorem 2 bound. *)

val eject_all : h -> int list
(** Run complete scan passes (still honoring current announcements) until
    no further handle can be ejected; returns everything ejected. Used at
    quiescence and by tests. *)
